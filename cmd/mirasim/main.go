// Command mirasim runs a single NoC simulation of one MIRA architecture
// under a chosen workload and reports latency, throughput, power and
// activity.
//
// Usage:
//
//	mirasim -arch 3DM-E -traffic ur -rate 0.2
//	mirasim -arch 2DB -traffic nuca -rate 0.1 -short 0.5
//	mirasim -arch 3DM -traffic trace -workload tpcw
package main

import (
	"flag"
	"fmt"
	"os"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/traffic"
)

func main() {
	archName := flag.String("arch", "3DM", "architecture: 2DB, 3DB, 3DM, 3DM(NC), 3DM-E, 3DM-E(NC)")
	trafficKind := flag.String("traffic", "ur", "traffic: ur, nuca, trace, transpose, complement, tornado")
	rate := flag.Float64("rate", 0.15, "injection rate in flits/node/cycle (synthetic)")
	short := flag.Float64("short", 0, "fraction of short flits (ur, nuca)")
	workload := flag.String("workload", "tpcw", "workload name (trace)")
	warmup := flag.Int64("warmup", 5000, "warm-up cycles")
	measure := flag.Int64("measure", 20000, "measurement cycles")
	seed := flag.Int64("seed", 1, "simulation seed")
	shutdown := flag.Bool("shutdown", true, "apply layer-shutdown power accounting")
	qos := flag.Bool("qos", false, "control-over-data switch priority")
	spec := flag.Bool("spec", false, "speculative switch allocation (Figure 8 (b))")
	lookahead := flag.Bool("lookahead", false, "look-ahead routing (Figure 8 (c))")
	matrixArb := flag.Bool("matrix-arb", false, "matrix (least-recently-served) allocator arbiters")
	flag.Parse()

	var arch core.Arch
	found := false
	for _, a := range core.Archs {
		if a.String() == *archName {
			arch, found = a, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "mirasim: unknown architecture %q\n", *archName)
		os.Exit(2)
	}

	d := core.MustDesign(arch)
	opts := exp.Options{Warmup: *warmup, Measure: *measure, Drain: 2 * *measure, TraceCycles: *measure, Seed: *seed}

	tweak := func(cfg noc.Config) noc.Config {
		cfg.QoSPriority = *qos
		cfg.SpecSA = *spec
		cfg.LookaheadRC = *lookahead
		if *matrixArb {
			cfg.Arb = noc.ArbMatrix
		}
		return cfg
	}
	runCfg := func(cfg noc.Config, gen noc.Generator) noc.Result {
		s := noc.NewSim(noc.NewNetwork(tweak(cfg)), gen)
		s.Params = noc.SimParams{Warmup: opts.Warmup, Measure: opts.Measure, DrainMax: opts.Drain}
		return s.Run()
	}

	fmt.Printf("architecture : %s (%d ports, %d layers, %d-cycle ST+LT)\n",
		d.Arch, d.AreaParams.Ports, d.AreaParams.Layers, d.STLTCycles)
	fmt.Printf("topology     : %s, link %.2f mm\n", d.Topo.Name, d.LinkLenMM)
	fmt.Printf("router area  : %.0f um^2 total, %.0f um^2 max/layer\n",
		d.Area.TotalRouter, d.Area.MaxLayer)

	switch *trafficKind {
	case "ur":
		gen := &traffic.Uniform{
			Topo: d.Topo, InjectionRate: *rate, PacketSize: core.DataPacketFlits,
			ShortFlits: traffic.ShortFlitProfile{Frac: *short, Layers: core.Layers},
		}
		r := runCfg(d.NoCConfig(noc.AnyFree, *seed), gen)
		report(d, r, exp.NetworkPowerW(d, r, *shutdown))
	case "nuca":
		gen := &traffic.NUCA{
			Topo: d.Topo, InjectionRate: *rate,
			RequestSize: core.ControlPacketFlits, ResponseSize: core.DataPacketFlits,
			BankDelay:  24,
			ShortFlits: traffic.ShortFlitProfile{Frac: *short, Layers: core.Layers},
		}
		r := runCfg(d.NoCConfig(noc.ByClass, *seed), gen)
		report(d, r, exp.NetworkPowerW(d, r, *shutdown))
	case "transpose", "complement", "tornado":
		dst := map[string]traffic.DstFunc{
			"transpose": traffic.Transpose, "complement": traffic.Complement, "tornado": traffic.Tornado,
		}[*trafficKind]
		gen := &traffic.Permutation{
			Topo: d.Topo, InjectionRate: *rate, PacketSize: core.DataPacketFlits,
			Dst: dst, Name: *trafficKind,
		}
		if err := gen.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
			os.Exit(1)
		}
		r := runCfg(d.NoCConfig(noc.AnyFree, *seed), gen)
		report(d, r, exp.NetworkPowerW(d, r, *shutdown))
	case "trace":
		w, ok := cmp.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "mirasim: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		tr, st, err := cmp.GenerateTrace(w, d.Topo, opts.TraceCycles, opts.Seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("workload     : %s (%.1f%% short flits, %.0f%% control packets)\n",
			w.Name, st.ShortFlitPct(), 100*st.ControlPacketFrac())
		r := runCfg(d.NoCConfig(noc.ByClass, *seed), &traffic.Replayer{Trace: tr, Loop: true})
		report(d, r, exp.NetworkPowerW(d, r, *shutdown))
	default:
		fmt.Fprintf(os.Stderr, "mirasim: unknown traffic kind %q\n", *trafficKind)
		os.Exit(2)
	}
}

func report(d *core.Design, r noc.Result, powerW float64) {
	fmt.Printf("result       : %s\n", r.String())
	for c := noc.Class(0); c < noc.NumClasses; c++ {
		if pc := r.PerClass[c]; pc.Ejected > 0 {
			fmt.Printf("  %-10s : lat=%.2f hops=%.2f (%d pkts)\n", c, pc.AvgLatency, pc.AvgHops, pc.Ejected)
		}
	}
	fmt.Printf("network power: %.3f W (at %.0f GHz)\n", powerW, power.ClockGHz)
}
