// Command mirasim runs a single NoC simulation of one MIRA architecture
// under a chosen workload and reports latency, throughput, power and
// activity. Every run is described by a declarative scenario
// (internal/scenario); -dump prints the scenario JSON for the current
// flags instead of running it, and -scenario executes a JSON file of one
// or more stored scenarios as a batch.
//
// Usage:
//
//	mirasim -arch 3DM-E -traffic ur -rate 0.2
//	mirasim -arch 2DB -traffic nuca -rate 0.1 -short 0.5
//	mirasim -arch 3DM -traffic trace -workload tpcw
//	mirasim -arch 3DM -traffic ur -rate 0.2 -dump > run.json
//	mirasim -scenario runs.json -workers 4
//	mirasim -arch 3DM -traffic ur -rate 0.2 -trace run.jsonl -series occ.csv
//
// -trace records every flit pipeline event as JSONL (replayable with
// "miratrace flits"), -series writes the cycle-sampled gauge time series
// (buffer occupancy, credit stalls, layer activity) as CSV, and
// -obswindow sets the sample window; any of the three attaches the
// observability collector (internal/obs) and prints a latency-percentile
// digest after the run. A scenario file may request the same via its
// "observe" block.
//
// Ctrl-C cancels the run; a canceled simulation reports the counters it
// measured before the interrupt and marks the result canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/obs"
	"mira/internal/power"
	"mira/internal/scenario"
)

func main() {
	archName := flag.String("arch", "3DM", "architecture: 2DB, 3DB, 3DM, 3DM(NC), 3DM-E, 3DM-E(NC)")
	trafficKind := flag.String("traffic", "ur", "traffic kind: "+strings.Join(scenario.TrafficKinds(), ", "))
	rate := flag.Float64("rate", 0.15, "injection rate in flits/node/cycle (synthetic)")
	short := flag.Float64("short", 0, "fraction of short flits (ur, nuca)")
	workload := flag.String("workload", "tpcw", "workload name (trace)")
	traceFile := flag.String("tracefile", "", "recorded trace to replay (replay)")
	hotFrac := flag.Float64("hotfrac", 0.3, "probability a packet targets a hot node (hotspot)")
	warmup := flag.Int64("warmup", 5000, "warm-up cycles")
	measure := flag.Int64("measure", 20000, "measurement cycles")
	seed := flag.Int64("seed", 1, "simulation seed")
	stepMode := flag.String("stepmode", "activity", "cycle-loop strategy: activity, fullscan or checked")
	shutdown := flag.Bool("shutdown", true, "apply layer-shutdown power accounting")
	qos := flag.Bool("qos", false, "control-over-data switch priority")
	spec := flag.Bool("spec", false, "speculative switch allocation (Figure 8 (b))")
	lookahead := flag.Bool("lookahead", false, "look-ahead routing (Figure 8 (c))")
	matrixArb := flag.Bool("matrix-arb", false, "matrix (least-recently-served) allocator arbiters")
	trace := flag.String("trace", "", "write a JSONL flit-event trace to this file (see miratrace flits)")
	series := flag.String("series", "", "write the sampled observability time series to this CSV file")
	obsWindow := flag.Int64("obswindow", 0, "observability sample window in cycles (0 = default 1000; enables observation with -trace/-series)")
	dump := flag.Bool("dump", false, "print the scenario JSON for these flags and exit without running")
	scenarioFile := flag.String("scenario", "", "run a JSON scenario (or array of scenarios) from this file ('-' for stdin) and print JSON results")
	workers := flag.Int("workers", 0, "batch worker goroutines for -scenario (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock limit for -scenario (0 = none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *scenarioFile != "" {
		if err := runBatchFile(ctx, *scenarioFile, *workers, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sc := scenario.Scenario{
		Arch:        *archName,
		Warmup:      *warmup,
		Measure:     *measure,
		Drain:       2 * *measure,
		Seed:        *seed,
		StepMode:    *stepMode,
		QoSPriority: *qos,
		SpecSA:      *spec,
		LookaheadRC: *lookahead,
		MatrixArb:   *matrixArb,
		Traffic:     trafficFromFlags(*trafficKind, *rate, *short, *workload, *traceFile, *hotFrac, *measure),
	}
	if *trace != "" || *series != "" || *obsWindow > 0 {
		sc.Observe = &scenario.Observe{Window: *obsWindow}
	}
	if err := sc.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
		os.Exit(2)
	}

	if *dump {
		data, err := sc.MarshalIndent()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", data)
		return
	}

	e, err := sc.Elaborate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
		os.Exit(1)
	}
	d := e.Design
	fmt.Printf("architecture : %s (%d ports, %d layers, %d-cycle ST+LT)\n",
		d.Arch, d.AreaParams.Ports, d.AreaParams.Layers, d.STLTCycles)
	fmt.Printf("topology     : %s, link %.2f mm\n", d.Topo.Name, d.LinkLenMM)
	fmt.Printf("router area  : %.0f um^2 total, %.0f um^2 max/layer\n",
		d.Area.TotalRouter, d.Area.MaxLayer)
	if sc.Traffic.Kind == "trace" {
		fmt.Printf("workload     : %s (%.1f%% short flits, %.0f%% control packets)\n",
			sc.Traffic.Workload, e.Stats.ShortFlitPct(), 100*e.Stats.ControlPacketFrac())
	}

	var traceOut *os.File
	if *trace != "" {
		traceOut, err = os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
			os.Exit(1)
		}
		defer traceOut.Close()
		e.Obs.SetTraceWriter(traceOut)
	}

	r := e.Sim.Run(ctx)
	report(d, r, exp.NetworkPowerW(d, r, *shutdown))

	if e.Obs != nil {
		if err := finishObs(e.Obs, traceOut, *trace, *series); err != nil {
			fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
			os.Exit(1)
		}
	}
}

// finishObs flushes the trace, writes the series CSV and prints the
// observability digest for an observed run.
func finishObs(c *obs.Collector, traceOut *os.File, tracePath, seriesPath string) error {
	if err := c.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	sum := c.Summary()
	l := sum.Latency
	fmt.Printf("observability: %d flits, flit lat p50/p95/p99 = %d/%d/%d, pkt p99 = %d (%d windows of %d cycles)\n",
		l.Flits, l.FlitP50, l.FlitP95, l.FlitP99, l.PacketP99, sum.Windows, sum.Window)
	if tracePath != "" {
		fmt.Printf("trace        : %d events -> %s\n", sum.Traced, tracePath)
	}
	if seriesPath != "" {
		if err := os.WriteFile(seriesPath, []byte(c.SeriesTable().CSV()), 0o644); err != nil {
			return fmt.Errorf("series: %w", err)
		}
		fmt.Printf("series       : %d windows x %d metrics -> %s\n",
			sum.Windows, c.Registry().Len(), seriesPath)
	}
	return nil
}

// trafficFromFlags assembles the traffic description for one kind,
// carrying over only the flags that kind consumes so the dumped scenario
// JSON stays minimal.
func trafficFromFlags(kind string, rate, short float64, workload, traceFile string, hotFrac float64, measure int64) scenario.Traffic {
	t := scenario.Traffic{Kind: kind}
	switch kind {
	case "ur", "nuca":
		t.Rate = rate
		t.ShortFrac = short
	case "transpose", "complement", "tornado":
		t.Rate = rate
	case "hotspot":
		t.Rate = rate
		t.HotFrac = hotFrac
	case "trace":
		t.Workload = workload
		t.TraceCycles = measure
	case "replay":
		t.TraceFile = traceFile
	}
	return t
}

// runBatchFile executes a stored scenario file through the batch runner
// and streams the JSON results to stdout.
func runBatchFile(ctx context.Context, path string, workers int, timeout time.Duration) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return scenario.RunBatchJSON(ctx, in, os.Stdout, scenario.BatchOptions{
		Workers: workers,
		Timeout: timeout,
	})
}

func report(d *core.Design, r noc.Result, powerW float64) {
	fmt.Printf("result       : %s\n", r.String())
	if r.Canceled {
		fmt.Printf("  (canceled after %d measured cycles; counters are partial)\n", r.Cycles)
	}
	for c := noc.Class(0); c < noc.NumClasses; c++ {
		if pc := r.PerClass[c]; pc.Ejected > 0 {
			fmt.Printf("  %-10s : lat=%.2f hops=%.2f (%d pkts)\n", c, pc.AvgLatency, pc.AvgHops, pc.Ejected)
		}
	}
	fmt.Printf("network power: %.3f W (at %.0f GHz)\n", powerW, power.ClockGHz)
}
