// Command mirabench regenerates the tables and figures of the MIRA
// paper's evaluation. Each subcommand corresponds to one table or
// figure; "all" runs the complete set.
//
// Usage:
//
//	mirabench [-quick] [-csv] [-svg DIR] [-seed N] [-workers N] [-shards N] [-stepmode MODE] [-progress] [-timing FILE] [-cpuprofile FILE] [-memprofile FILE] [-obs] [-obswindow N] <experiment>...
//	mirabench all
//	mirabench list
//	mirabench -obs
//
// Sweep points fan out across -workers goroutines (default: all CPUs);
// tables are bit-identical for any worker count. -shards N additionally
// partitions each simulated mesh into N contiguous router-ID ranges
// stepped concurrently inside every cycle; tables are bit-identical for
// any shard count, and the two knobs compose (workers parallelize
// across sweep points, shards inside each simulation). -progress logs a
// per-point timing line to stderr; -timing records per-experiment
// wall-clock times as JSON.
//
// -stepmode selects the simulator's cycle-loop strategy (activity,
// fullscan or checked); all modes produce identical tables, so a stdout
// diff between modes is a determinism regression check. -cpuprofile and
// -memprofile write pprof profiles for performance work.
//
// -obs measures the observability layer's probe overhead (bare vs
// collector vs collector+trace) and prints the comparison; alone it runs
// just that report. -obswindow N attaches a collector with an N-cycle
// sample window to every sweep point of the selected experiments.
// -enginestats attaches engine self-telemetry to every sweep point and
// logs per-point engine progress (cycles/sec, shard imbalance) to
// stderr; like -obswindow it is out-of-band and leaves every table
// byte-identical.
//
// Experiments: table1 table2 table3, fig1 fig2 fig3 fig8 fig9 fig10,
// fig11a-d, fig12a-d, fig13a-c, plus the ablation-* and ext-* studies
// beyond the paper (run "mirabench list" for the inventory).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"mira/internal/cli"
	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/obs"
)

type experiment struct {
	id   string
	desc string
	run  func(context.Context, exp.Options) (exp.Table, error)
}

func wrap(f func() exp.Table) func(context.Context, exp.Options) (exp.Table, error) {
	return func(context.Context, exp.Options) (exp.Table, error) { return f(), nil }
}

func wrapOpts(f func(context.Context, exp.Options) exp.Table) func(context.Context, exp.Options) (exp.Table, error) {
	return func(ctx context.Context, o exp.Options) (exp.Table, error) { return f(ctx, o), nil }
}

var experiments = []experiment{
	{"table1", "router component areas (TSMC 90nm model)", wrap(exp.Table1)},
	{"table2", "physical design parameters", wrap(exp.Table2)},
	{"table3", "ST+LT pipeline combination delays", wrap(exp.Table3)},
	{"fig1", "data pattern breakdown per workload", exp.Fig1},
	{"fig2", "packet type distribution per workload", exp.Fig2},
	{"fig3", "chip footprint comparison", wrap(exp.Fig3)},
	{"fig8", "router pipeline family comparison", wrapOpts(exp.Fig8)},
	{"fig9", "per-flit energy breakdown", wrap(exp.Fig9)},
	{"fig10", "NUCA node layouts", wrap(exp.Fig10)},
	{"fig11a", "latency vs injection rate, uniform random", wrapOpts(exp.Fig11a)},
	{"fig11b", "latency vs injection rate, NUCA-UR", wrapOpts(exp.Fig11b)},
	{"fig11c", "MP-trace latency normalized to 2DB", exp.Fig11c},
	{"fig11d", "average hop counts", exp.Fig11d},
	{"fig12a", "power vs injection rate, uniform random", wrapOpts(exp.Fig12a)},
	{"fig12b", "power vs injection rate, NUCA-UR", wrapOpts(exp.Fig12b)},
	{"fig12c", "MP-trace power normalized to 2DB", exp.Fig12c},
	{"fig12d", "normalized power-delay product", wrapOpts(exp.Fig12d)},
	{"fig13a", "short flit percentage per workload", exp.Fig13a},
	{"fig13b", "layer-shutdown power savings", wrapOpts(exp.Fig13b)},
	{"fig13c", "temperature reduction from shutdown", wrapOpts(exp.Fig13c)},
	{"ablation-buf", "3DM buffer-depth ablation (extension)", wrapOpts(exp.AblationBufferDepth)},
	{"ablation-vc", "3DM VC-count ablation (extension)", wrapOpts(exp.AblationVCs)},
	{"ablation-express", "express-interval ablation (extension)", exp.AblationExpressInterval},
	{"ext-leakage", "leakage-thermal feedback (extension)", wrapOpts(exp.ExtLeakage)},
	{"ext-cosim", "closed-loop CMP/NoC co-simulation (extension)", exp.ExtCosim},
	{"ext-patterns", "adversarial traffic patterns (extension)", exp.ExtPatterns},
	{"ext-qos", "QoS priority arbitration (extension)", wrapOpts(exp.ExtQoS)},
	{"ext-fault", "link-fault tolerance via west-first routing (extension)", exp.ExtFault},
	{"ext-herding", "thermal herding + router shutdown (extension)", wrapOpts(exp.ExtHerding)},
	{"ext-protocol", "MESI vs MOESI coherence traffic (extension)", exp.ExtProtocol},
	{"ext-chiplet", "chiplet grid d2d link sweep (extension)", wrapOpts(exp.ChipletSweep)},
	{"ext-collective", "collective workloads: ring allreduce / reduce-scatter / tree broadcast (extension)", wrapOpts(exp.CollectiveSweep)},
	{"obs-ur", "observability summaries across UR injection rates (extension)",
		wrapOpts(func(ctx context.Context, o exp.Options) exp.Table {
			return exp.ObsURSweep(ctx, core.Arch3DM, []float64{0.05, 0.10, 0.15, 0.20, 0.25}, o)
		})},
	{"obs-stages", "per-flit latency stage decomposition per architecture (extension)",
		wrapOpts(func(ctx context.Context, o exp.Options) exp.Table {
			return exp.SpanStages(ctx,
				[]core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME}, 0.15, o)
		})},
}

func main() {
	quick := flag.Bool("quick", false, "use short simulation windows")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	svgDir := flag.String("svg", "", "also write an SVG figure per experiment into this directory")
	seed := flag.Int64("seed", 42, "simulation seed")
	workers := flag.Int("workers", 0, "sweep-point worker goroutines (0 = all CPUs); results are identical for any value")
	shards := flag.Int("shards", 0, "concurrent router shards inside each simulation (0 or 1 = sequential, -1 = auto from mesh size and CPUs); results are identical for any value")
	progress := flag.Bool("progress", false, "log a per-point progress/timing line to stderr")
	timingFile := flag.String("timing", "", "write per-experiment wall-clock times to this JSON file")
	stepMode := flag.String("stepmode", "activity", "cycle-loop strategy: activity, fullscan or checked; tables are identical for every mode")
	obsReport := flag.Bool("obs", false, "measure and report observability probe overhead (runs standalone or before the selected experiments)")
	obsWindow := flag.Int64("obswindow", 0, "attach a collector with this sample window (cycles) to every sweep point; 0 = unobserved")
	engineStats := flag.Bool("enginestats", false, "attach engine telemetry to every sweep point and log per-point engine progress (cycles/sec, shard imbalance) to stderr; tables are identical either way")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	var logf cli.LogFlags
	cli.RegisterFlags(flag.CommandLine, &logf)
	flag.Usage = usage
	flag.Parse()
	if err := cli.Setup(logf); err != nil {
		fmt.Fprintf(os.Stderr, "mirabench: %v\n", err)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancel the context; in-flight simulations stop
	// within one cancellation stride and the process exits without
	// printing the interrupted experiment's (partial) table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	args := flag.Args()
	if len(args) == 0 && !*obsReport {
		usage()
		os.Exit(2)
	}

	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Shards = *shards
	opts.ObserveWindow = *obsWindow
	opts.Engine = *engineStats
	if *engineStats {
		// Sweep points run concurrently; labeled slog lines interleave
		// cleanly where a single rewritten line could not.
		obs.SetEngineProgressHook(func(p obs.EngineProgress) {
			slog.Info("engine", "cmd", "mirabench", "point", p.Label, "state", p.String())
		})
	}
	mode, err := noc.ParseStepMode(*stepMode)
	if err != nil {
		slog.Error("bad -stepmode", "cmd", "mirabench", "err", err)
		os.Exit(2)
	}
	opts.StepMode = mode

	if *obsReport {
		tb := exp.ObsOverhead(ctx, opts)
		if *csv {
			fmt.Printf("# %s\n%s\n", tb.ID, tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
		if len(args) == 0 {
			return
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			cli.Fatal("mirabench", fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			cli.Fatal("mirabench", fmt.Errorf("cpuprofile: %w", err))
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				slog.Error("memprofile", "cmd", "mirabench", "err", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				slog.Error("memprofile", "cmd", "mirabench", "err", err)
			}
		}()
	}
	if *progress {
		opts.Progress = func(p exp.Progress) {
			slog.Info("point", "done", p.Done, "total", p.Total, "label", p.Label,
				"elapsed", p.Elapsed.Round(time.Millisecond))
		}
	}

	if args[0] == "list" {
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.id, e.desc)
		}
		return
	}

	var selected []experiment
	if args[0] == "all" {
		selected = experiments
	} else {
		byID := map[string]experiment{}
		for _, e := range experiments {
			byID[e.id] = e
		}
		for _, id := range args {
			e, ok := byID[id]
			if !ok {
				slog.Error("unknown experiment (try 'list')", "cmd", "mirabench", "experiment", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var timings []expTiming
	for _, e := range selected {
		if *progress {
			slog.Info("experiment start", "id", e.id)
		}
		start := time.Now()
		tb, err := e.run(ctx, opts)
		elapsed := time.Since(start)
		if ctx.Err() != nil {
			slog.Error("interrupted", "cmd", "mirabench", "experiment", e.id)
			os.Exit(130)
		}
		if err != nil {
			cli.Fatal("mirabench", fmt.Errorf("%s: %w", e.id, err))
		}
		timings = append(timings, expTiming{ID: e.id, Seconds: elapsed.Seconds()})
		if *csv {
			fmt.Printf("# %s\n%s\n", tb.ID, tb.CSV())
		} else {
			fmt.Println(tb.String())
			// Timing goes to stderr so stdout stays byte-identical
			// across worker counts and machines.
			slog.Info("experiment done", "id", e.id, "elapsed", elapsed.Round(time.Millisecond))
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, tb); err != nil {
				slog.Warn("no figure written", "cmd", "mirabench", "id", tb.ID, "err", err)
			}
		}
	}
	if *timingFile != "" {
		if err := writeTimings(*timingFile, opts, *workers, timings); err != nil {
			cli.Fatal("mirabench", fmt.Errorf("timing file: %w", err))
		}
	}
}

// expTiming is one experiment's wall-clock entry in the -timing file.
type expTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// timingReport is the -timing JSON document; it captures enough context
// (worker count, windows, seed) to compare runs across machines.
type timingReport struct {
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Workers     int         `json:"workers"` // as requested; 0 means GOMAXPROCS
	Quick       bool        `json:"quick"`
	Seed        int64       `json:"seed"`
	Experiments []expTiming `json:"experiments"`
	TotalSec    float64     `json:"total_seconds"`
}

func writeTimings(path string, o exp.Options, workers int, timings []expTiming) error {
	rep := timingReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Quick:       o.Measure < exp.Default().Measure,
		Seed:        o.Seed,
		Experiments: timings,
	}
	for _, t := range timings {
		rep.TotalSec += t.Seconds
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeSVG renders a table as a figure in dir. Tables with no numeric
// series (e.g. the fig10 layouts) report an error and are skipped.
func writeSVG(dir string, tb exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svg, err := tb.SVG("")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, tb.ID+".svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	slog.Info("wrote figure", "path", path)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `mirabench regenerates the MIRA paper's tables and figures.

usage: mirabench [-quick] [-seed N] [-workers N] [-shards N] [-stepmode MODE] [-progress] [-timing FILE] [-cpuprofile FILE] [-memprofile FILE] [-obs] [-obswindow N] [-enginestats] <experiment>... | all | list
`)
	flag.PrintDefaults()
}
